// Command zc-datacenter runs a railway company's export endpoint: it
// periodically pulls new blocks from the on-train replicas (Fig 4), verifies
// them against 2f+1-signed stable checkpoints, archives them durably, and
// authorizes pruning with signed deletes.
//
// Usage:
//
//	zc-datacenter -keyring keys.json -id 0 -archive ./archive \
//	  -replicas 0=localhost:7100,1=localhost:7101,2=localhost:7102,3=localhost:7103 \
//	  -interval 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	ossignal "os/signal"
	"syscall"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/cli"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/keyring"
	"zugchain/internal/metrics"
	"zugchain/internal/netsim"
	"zugchain/internal/obsv"
	"zugchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-datacenter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		keyringPath  = flag.String("keyring", "keys.json", "cluster keyring (zc-keygen)")
		idFlag       = flag.Uint("id", 0, "data center index (0-based)")
		replicasFlag = flag.String("replicas", "", "comma-separated id=host:port for all replicas")
		archiveDir   = flag.String("archive", "archive", "durable archive directory")
		interval     = flag.Duration("interval", 30*time.Second, "export period")
		shapeLTE     = flag.Bool("lte", false, "shape the uplink to the paper's LTE profile")
		deleteAcks   = flag.Int("delete-acks", 3, "replica acks required per export round")
		sendQueue    = flag.Int("send-queue", transport.DefaultSendQueue, "per-replica outbound queue capacity (oldest dropped when full)")
		flushEvery   = flag.Duration("flush-interval", 0, "linger before flushing partial outbound write batches (0 = flush when idle)")
		metricsAddr  = flag.String("metrics-addr", "", "observability HTTP address (/metrics /statusz /debug/pprof; empty = off)")
		statsEvery   = flag.Duration("stats", 0, "stats print interval (0 = off)")
	)
	flag.Parse()

	kr, err := keyring.Load(*keyringPath)
	if err != nil {
		return err
	}
	reg, err := kr.Registry()
	if err != nil {
		return err
	}
	dcID := crypto.DataCenterIDBase + crypto.NodeID(*idFlag)
	kp, err := kr.KeyPair(dcID)
	if err != nil {
		return err
	}
	// Count the export path's checkpoint/block verifications like a node
	// counts its own: the accelerated view shares the key set but owns its
	// counters.
	cc := &metrics.CryptoCounters{}
	reg = reg.Accelerated(nil, false, cc)
	replicaAddrs, err := cli.ParsePeers(*replicasFlag)
	if err != nil {
		return err
	}

	tcp, err := transport.NewTCP(dcID, "" /* dial only */, replicaAddrs)
	if err != nil {
		return err
	}
	tcp.SendQueue = *sendQueue
	tcp.FlushInterval = *flushEvery
	var tr transport.Transport = tcp
	if *shapeLTE {
		tr = netsim.NewShaped(tcp, netsim.LTE)
	}
	defer tr.Close()

	archive, err := blockchain.NewStore(*archiveDir)
	if err != nil {
		return err
	}
	dc := export.NewDataCenter(export.DataCenterConfig{
		ID:       dcID,
		Replicas: kr.ReplicaIDs(),
	}, kp, reg, archive, tr)

	// The data center has no consensus pipeline, so its observer runs
	// without the lifecycle tracer: archive gauges, net, crypto, and
	// group-commit counters are the interesting families here.
	obs := obsv.NewObserver(obsv.Options{DisableTrace: true})
	obsv.RegisterNet(obs.Registry, tcp.NetCounters())
	obsv.RegisterCrypto(obs.Registry, cc)
	obsv.RegisterGroupCommit(obs.Registry, archive.GroupCommits())
	obs.Registry.Register("chain", func() []obsv.Metric {
		return []obsv.Metric{
			{Name: "zugchain_chain_height", Help: "Archive head index", Kind: obsv.KindGauge, Value: float64(archive.HeadIndex())},
			{Name: "zugchain_chain_base", Help: "Oldest retained archive block", Kind: obsv.KindGauge, Value: float64(archive.Base())},
		}
	})
	if *metricsAddr != "" {
		msrv, err := obsv.Serve(*metricsAddr, obs)
		if err != nil {
			return err
		}
		defer msrv.Close()
		log.Printf("observability on http://%s", msrv.Addr())
	}
	reporter := obsv.NewReporter(*statsEvery, func() string { return obsv.Summary(obs) }, nil)
	defer reporter.Stop()

	log.Printf("data center %v exporting every %v, archive at %s (height %d)",
		dcID, *interval, *archiveDir, archive.HeadIndex())

	sigCh := make(chan os.Signal, 1)
	ossignal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	for {
		select {
		case <-sigCh:
			log.Printf("shutting down at archive height %d", archive.HeadIndex())
			return nil
		case <-ticker.C:
			if err := exportOnce(dc, archive, *deleteAcks); err != nil {
				log.Printf("export round failed: %v", err)
			}
		}
	}
}

func exportOnce(dc *export.DataCenter, archive *blockchain.Store, minAcks int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	res, err := dc.Read(ctx)
	if err != nil {
		return err
	}
	if res.NewBlocks == 0 {
		log.Printf("up to date at block %d", res.BlockIndex)
		return nil
	}
	if err := archive.VerifyChain(); err != nil {
		return fmt.Errorf("archive verification after export: %w", err)
	}
	dc.SendDelete(res.BlockIndex, res.BlockHash)
	if err := dc.WaitDeleteAcks(ctx, res.BlockIndex, minAcks); err != nil {
		return err
	}
	log.Printf("exported %d blocks through %d (read %v, verify %v); replicas pruned",
		res.NewBlocks, res.BlockIndex,
		res.ReadDuration.Round(time.Millisecond),
		res.VerifyDuration.Round(time.Millisecond))
	return nil
}
