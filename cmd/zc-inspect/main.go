// Command zc-inspect examines a persisted blockchain directory — a
// replica's data dir or a data center archive — the way an accident
// investigator would: verify integrity end to end, check the pruning
// authorization, and dump the juridical records.
//
// Usage:
//
//	zc-inspect -dir ./archive                 # verify + summary
//	zc-inspect -dir ./archive -block 17       # dump one block
//	zc-inspect -dir ./archive -events         # list discrete events
package main

import (
	"flag"
	"fmt"
	"os"

	"zugchain/internal/analysis"
	"zugchain/internal/blockchain"
	"zugchain/internal/export"
	"zugchain/internal/signal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-inspect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir      = flag.String("dir", "", "blockchain directory to inspect")
		blockIdx = flag.Int64("block", -1, "dump the block at this index")
		events   = flag.Bool("events", false, "list discrete juridical events")
		analyze  = flag.Bool("analyze", false, "run the post-operational analysis")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}

	store, err := blockchain.NewStore(*dir)
	if err != nil {
		return err
	}

	fmt.Printf("chain: base=%d head=%d (%d retained blocks)\n",
		store.Base(), store.HeadIndex(), store.HeadIndex()-store.Base()+1)
	if err := store.VerifyChain(); err != nil {
		fmt.Printf("INTEGRITY: FAILED — %v\n", err)
		return err
	}
	fmt.Println("INTEGRITY: OK — every retained block hash-links and validates")

	if auth := store.PruneAuth(); len(auth) > 0 {
		cert, err := export.UnmarshalDeleteCertificate(auth)
		if err != nil {
			fmt.Printf("prune authorization: UNPARSEABLE (%v)\n", err)
		} else {
			fmt.Printf("prune authorization: block %d, %d data-center signatures\n",
				cert.BlockIndex, len(cert.Deletes))
		}
	} else if store.Base() > 0 {
		fmt.Println("prune authorization: MISSING for a non-genesis base")
	}

	if *blockIdx >= 0 {
		return dumpBlock(store, uint64(*blockIdx))
	}
	if *events {
		return dumpEvents(store)
	}
	if *analyze {
		return runAnalysis(store)
	}
	return nil
}

func runAnalysis(store *blockchain.Store) error {
	report, err := analysis.Analyze(store, analysis.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("\npost-operational analysis: %d records, %d discrete events\n",
		report.Records, len(report.Timeline))
	fmt.Println("records per reading node:")
	for origin, n := range report.ByOrigin {
		fmt.Printf("  %-6v %d\n", origin, n)
	}
	if len(report.Findings) == 0 {
		fmt.Println("no suspicious findings")
		return nil
	}
	fmt.Printf("%d findings:\n", len(report.Findings))
	for _, f := range report.Findings {
		fmt.Printf("  [%s] block %d seq %d origin %v: %s\n",
			f.Kind, f.Block, f.Seq, f.Origin, f.Detail)
	}
	return nil
}

func dumpBlock(store *blockchain.Store, idx uint64) error {
	b, err := store.Get(idx)
	if err != nil {
		return err
	}
	hash := b.Hash()
	fmt.Printf("\nblock %d  hash=%x  prev=%x  seqs %d..%d\n",
		b.Index, hash[:8], b.PrevHash[:8], b.FirstSeq, b.LastSeq)
	for _, e := range b.Entries {
		rec, err := signal.UnmarshalRecord(e.Payload)
		if err != nil {
			fmt.Printf("  seq %d (r%d): %d opaque bytes (not a signal record)\n",
				e.Seq, uint32(e.Origin), len(e.Payload))
			continue
		}
		fmt.Printf("  seq %d (read by %v), bus cycle %d:\n", e.Seq, e.Origin, rec.Cycle)
		for _, s := range rec.Signals {
			switch {
			case len(s.Opaque) > 0:
				fmt.Printf("    %-16s %d opaque bytes\n", s.Kind, len(s.Opaque))
			case s.Discrete != 0 || s.Value == 0:
				fmt.Printf("    %-16s code=%d\n", s.Kind, s.Discrete)
			default:
				fmt.Printf("    %-16s %.4g\n", s.Kind, s.Value)
			}
		}
	}
	return nil
}

func dumpEvents(store *blockchain.Store) error {
	fmt.Println("\ndiscrete juridical events:")
	count := 0
	for idx := store.Base(); idx <= store.HeadIndex(); idx++ {
		b, err := store.Get(idx)
		if err != nil {
			continue // compacted to header
		}
		for _, e := range b.Entries {
			rec, err := signal.UnmarshalRecord(e.Payload)
			if err != nil {
				continue
			}
			for _, s := range rec.Signals {
				switch s.Kind {
				case signal.KindEmergencyBrake, signal.KindATPCommand:
					fmt.Printf("  block %4d  seq %6d  cycle %6d  %-16s code=%d (read by %v)\n",
						b.Index, e.Seq, rec.Cycle, s.Kind, s.Discrete, e.Origin)
					count++
				}
			}
		}
	}
	fmt.Printf("%d events\n", count)
	return nil
}
