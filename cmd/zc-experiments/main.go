// Command zc-experiments regenerates the paper's evaluation tables and
// figures as text tables: Fig 6 (network + latency), Fig 7 (CPU + memory),
// Fig 8 (view-change timeline), Fig 9 (Byzantine behaviour), Table II
// (export latency), and the JRU requirements check.
//
// Usage:
//
//	zc-experiments -exp all
//	zc-experiments -exp fig6 -cycles 150 -timescale 4
//	zc-experiments -exp table2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zugchain/internal/experiments"
	"zugchain/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: fig6|fig7|fig8|fig9|table2|jru|ablations|all")
		cycles    = flag.Int("cycles", 100, "bus cycles per scenario")
		timeScale = flag.Int("timescale", 8, "time compression (1 = paper-real time)")
		seed      = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	opt := experiments.Options{Cycles: *cycles, TimeScale: *timeScale, Seed: *seed}
	run := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	all := *exp == "all"
	if all || *exp == "fig6" {
		if err := run("fig6", func() error { return runFig6(opt) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig7" {
		if err := run("fig7", func() error { return runFig7(opt) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig8" {
		if err := run("fig8", func() error { return runFig8(opt) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig9" {
		if err := run("fig9", func() error { return runFig9(opt) }); err != nil {
			return err
		}
	}
	if all || *exp == "table2" {
		if err := run("table2", runTable2); err != nil {
			return err
		}
	}
	if all || *exp == "ablations" {
		if err := run("ablations", func() error { return runAblations(opt) }); err != nil {
			return err
		}
	}
	if all || *exp == "jru" {
		if err := run("jru", func() error { return runJRU(opt) }); err != nil {
			return err
		}
	}
	return nil
}

func runFig6(opt experiments.Options) error {
	rows, err := experiments.Fig6BusCycles(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(
		"Fig 6 (left): network utilization and latency vs bus cycle (payload 1kB)", rows, "fig6"))
	fmt.Println()
	rows, err = experiments.Fig6Payloads(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(
		"Fig 6 (right): network utilization and latency vs payload size (cycle 64ms)", rows, "fig6"))
	return nil
}

func runFig7(opt experiments.Options) error {
	rows, err := experiments.Fig7BusCycles(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(
		"Fig 7 (left): CPU and memory proxies vs bus cycle (payload 1kB)", rows, "fig7"))
	fmt.Println()
	rows, err = experiments.Fig7Payloads(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatComparison(
		"Fig 7 (right): CPU and memory proxies vs payload size (cycle 64ms)", rows, "fig7"))
	return nil
}

func runFig8(opt experiments.Options) error {
	zc, err := experiments.Fig8(testbed.ZugChain, opt)
	if err != nil {
		return err
	}
	bl, err := experiments.Fig8(testbed.Baseline, opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig8(zc, bl))
	fmt.Println("\nZugChain latency timeline around the fault (t=0):")
	printTimeline(zc)
	fmt.Println("\nBaseline latency timeline around the fault (t=0):")
	printTimeline(bl)
	return nil
}

func printTimeline(r *experiments.Fig8Result) {
	printed := 0
	for _, p := range r.Timeline {
		if p.Since < -500*time.Millisecond || p.Since > 2*time.Second {
			continue
		}
		fmt.Printf("  t=%8v  latency=%v\n",
			p.Since.Round(time.Millisecond), p.Latency.Round(time.Millisecond))
		printed++
		if printed >= 40 {
			fmt.Println("  ...")
			break
		}
	}
}

func runFig9(opt experiments.Options) error {
	rows, err := experiments.Fig9(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig9(rows))
	return nil
}

func runAblations(opt experiments.Options) error {
	rows, err := experiments.AblationBlockSize(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAblation(
		"Ablation: block/checkpoint size (64ms cycle, 1kB payload)", rows))
	fmt.Println()
	rows, err = experiments.AblationSoftTimeout(opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAblation(
		"Ablation: soft+hard timeout bounding view-change recovery (primary killed mid-run, hard fixed 250ms)", rows))
	return nil
}

func runTable2() error {
	rows, err := experiments.TableII(experiments.TableIIOptions{})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTableII(rows))
	return nil
}

func runJRU(opt experiments.Options) error {
	dir, err := os.MkdirTemp("", "zc-jru-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	check, err := experiments.RunJRUCheck(dir, opt)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatJRU(check))
	return nil
}
